package softwatt

// The sampled-run caching layers (DESIGN.md §14) and the adaptive wave
// scheduler. Both caches promise the same thing the run-log cache does: a
// warm answer is indistinguishable from the cold one it replaced — the
// tests assert full structural equality, not just matching headline
// numbers — and a corrupt file heals by counting, warning, and rebuilding.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"softwatt/internal/disk"
	"softwatt/internal/ffstore"
	"softwatt/internal/obs"
)

// globOne returns the single file in dir matching pattern.
func globOne(t *testing.T, dir, pattern string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("glob %s in %s: got %v, want one file", pattern, dir, files)
	}
	return files[0]
}

// TestFFCacheWarmColdEquivalence: a sampled run with a warm fast-forward
// reservoir cache must produce a result structurally identical to the cold
// run that populated it — the reservoir file carries everything phase 1
// contributes (checkpoints, run length, disk figures).
func TestFFCacheWarmColdEquivalence(t *testing.T) {
	dir := t.TempDir()
	so := SampleOptions{Windows: 3, FFCacheDir: dir}
	hits0 := obs.Batch().FFCacheHits.Value()
	misses0 := obs.Batch().FFCacheMisses.Value()

	cold, err := RunSampled("compress", Options{Core: "mipsy"}, so)
	if err != nil {
		t.Fatal(err)
	}
	globOne(t, dir, "compress-*.swffr")
	if got := obs.Batch().FFCacheMisses.Value() - misses0; got != 1 {
		t.Errorf("cold run counted %d FF-cache misses, want 1", got)
	}

	warm, err := RunSampled("compress", Options{Core: "mipsy"}, so)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Batch().FFCacheHits.Value() - hits0; got != 1 {
		t.Errorf("warm run counted %d FF-cache hits, want 1", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm FF-cache result differs from cold:\ncold %+v\nwarm %+v", cold, warm)
	}
}

// TestFFCacheCorruptRebuilds: a reservoir file that exists but cannot load
// is counted, removed, and rebuilt — the run still succeeds with the cold
// result, and the store holds a valid reservoir again afterwards.
func TestFFCacheCorruptRebuilds(t *testing.T) {
	dir := t.TempDir()
	so := SampleOptions{Windows: 3, FFCacheDir: dir}
	cold, err := RunSampled("compress", Options{Core: "mipsy"}, so)
	if err != nil {
		t.Fatal(err)
	}
	path := globOne(t, dir, "compress-*.swffr")
	if err := os.WriteFile(path, []byte("not a reservoir"), 0o644); err != nil {
		t.Fatal(err)
	}

	corrupt0 := obs.Batch().FFCacheCorrupt.Value()
	healed, err := RunSampled("compress", Options{Core: "mipsy"}, so)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Batch().FFCacheCorrupt.Value() - corrupt0; got != 1 {
		t.Errorf("counted %d corrupt FF-cache files, want 1", got)
	}
	if !reflect.DeepEqual(cold, healed) {
		t.Fatalf("result after corrupt-rebuild differs from cold:\ncold %+v\ngot  %+v", cold, healed)
	}
	digest := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "compress-"), ".swffr")
	if _, err := (ffstore.Store{Dir: dir}).Load("compress", digest); err != nil {
		t.Errorf("rebuilt reservoir does not load: %v", err)
	}
}

// TestMachineReuseMatchesFreshMachines: with one worker, all windows run
// on a single machine through Recycle + RestoreState; with one worker per
// window, every window gets a machine fresh from New. The results must be
// structurally identical — machine reuse is invisible.
func TestMachineReuseMatchesFreshMachines(t *testing.T) {
	serial, err := RunSampled("compress", Options{Core: "mipsy"}, SampleOptions{Windows: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunSampled("compress", Options{Core: "mipsy"}, SampleOptions{Windows: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fresh) {
		t.Fatalf("recycled-machine result differs from fresh-machine result:\n1 worker  %+v\n3 workers %+v", serial, fresh)
	}
}

// TestSampledResultFileRoundTrip: every field of a SampledResult survives
// the SRES container, and a file that is not a sampled result fails to
// load with an error rather than decoding garbage.
func TestSampledResultFileRoundTrip(t *testing.T) {
	r := &SampledResult{
		Benchmark:     "compress",
		Core:          "mipsy",
		ClockHz:       600e6,
		Digest:        "0123456789abcdef",
		TotalCycles:   1_065_138,
		Committed:     900_123,
		WindowCycles:  200_000,
		SampledCycles: 400_000,
		MeanPowerW:    5.25,
		PowerCI95W:    0.375,
		EnergyJ:       9.3,
		EnergyCI95J:   0.66,
		DiskEnergyJ:   2.125,
		IdleCycles:    123_456,
		DiskStats: disk.Stats{
			Reads: 7, Writes: 3, BytesMoved: 40_960, Spinups: 2, Spindowns: 1,
		},
		Windows: []WindowMeasure{
			{Index: 0, StartCycle: 131_072, Cycles: 200_000, EnergyJ: 1.75, PowerW: 5.25},
			{Index: 1, StartCycle: 655_360, Cycles: 150_000, EnergyJ: 1.3, PowerW: 5.2},
		},
	}
	for i := range r.DiskStats.StateCycles {
		r.DiskStats.StateCycles[i] = uint64(1000*i + 1)
	}

	path := filepath.Join(t.TempDir(), "result.swsmp")
	if err := SaveSampledResultFile(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSampledResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("sampled result changed across save/load:\nsaved  %+v\nloaded %+v", r, got)
	}

	bad := filepath.Join(t.TempDir(), "bad.swsmp")
	if err := os.WriteFile(bad, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSampledResultFile(bad); err == nil {
		t.Error("loaded a non-container file as a sampled result")
	}
}

// TestRunSampledCached: the sampled-result cache's hit, miss, and
// corrupt-heal paths, each returning a result structurally identical to
// the cold one.
func TestRunSampledCached(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Core: "mipsy"}
	so := SampleOptions{Windows: 3, FFCacheDir: dir}
	hits0 := obs.Batch().SampledCacheHits.Value()
	misses0 := obs.Batch().SampledCacheMisses.Value()
	corrupt0 := obs.Batch().SampledCacheCorrupt.Value()

	cold, err := RunSampledCached("compress", opt, so, dir)
	if err != nil {
		t.Fatal(err)
	}
	name, err := SampledCacheFileName("compress", opt, so)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
		t.Fatalf("cold run did not save its result: %v", err)
	}
	if got := obs.Batch().SampledCacheMisses.Value() - misses0; got != 1 {
		t.Errorf("cold run counted %d sampled-cache misses, want 1", got)
	}

	warm, err := RunSampledCached("compress", opt, so, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Batch().SampledCacheHits.Value() - hits0; got != 1 {
		t.Errorf("warm run counted %d sampled-cache hits, want 1", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached sampled result differs from cold:\ncold %+v\nwarm %+v", cold, warm)
	}

	if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	healed, err := RunSampledCached("compress", opt, so, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Batch().SampledCacheCorrupt.Value() - corrupt0; got != 1 {
		t.Errorf("counted %d corrupt sampled-cache files, want 1", got)
	}
	if !reflect.DeepEqual(cold, healed) {
		t.Fatalf("result after corrupt-heal differs from cold:\ncold %+v\ngot  %+v", cold, healed)
	}
}

// TestAdaptiveSamplingConvergesEarly: with a loose CI target, adaptive
// sampling must stop after its first wave — fewer windows than the fixed
// default of 10 — with the target met, windows in timeline order, and
// indices renumbered.
func TestAdaptiveSamplingConvergesEarly(t *testing.T) {
	s, err := RunSampled("compress", Options{Core: "mipsy"}, SampleOptions{Windows: 2, TargetCIW: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Windows) != 2 {
		t.Fatalf("adaptive run measured %d windows, want the 2-window first wave to satisfy a 1.0 W target", len(s.Windows))
	}
	if !(s.PowerCI95W <= 1.0) {
		t.Fatalf("stopped with CI half-width %.3f W, above the 1.0 W target", s.PowerCI95W)
	}
	for i, wm := range s.Windows {
		if wm.Index != i {
			t.Errorf("window %d has index %d after the adaptive sort", i, wm.Index)
		}
		if i > 0 && wm.StartCycle < s.Windows[i-1].StartCycle {
			t.Errorf("windows not in timeline order: %d @ %d after %d", i, wm.StartCycle, s.Windows[i-1].StartCycle)
		}
	}
}

// TestAdaptiveWindowCap: an unreachable CI target must stop at MaxWindows,
// with the later waves clamped so the cap is hit exactly.
func TestAdaptiveWindowCap(t *testing.T) {
	s, err := RunSampled("compress", Options{Core: "mipsy"}, SampleOptions{
		Windows: 2, TargetCIW: 1e-9, MaxWindows: 3, ReservoirEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Windows) != 3 {
		t.Fatalf("adaptive run measured %d windows, want exactly the MaxWindows cap of 3", len(s.Windows))
	}
	if s.PowerCI95W <= 1e-9 {
		t.Fatalf("CI half-width %.3g W implausibly met the unreachable target", s.PowerCI95W)
	}
}
