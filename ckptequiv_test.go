package softwatt

// Checkpoint equivalence: saving a machine mid-run and restoring it into a
// freshly built machine must be invisible in the results. For every
// workload × detailed core, a run checkpointed at its halfway cycle and
// continued on a second machine must serialise to byte-identical result
// bytes (every sample window, unit count, Welford state, disk joule) as the
// same run executed straight through. This is the acceptance property of
// DESIGN.md §13: everything the estimator can observe round-trips.

import (
	"bytes"
	"testing"

	"softwatt/internal/core"
	"softwatt/internal/machine"
	"softwatt/internal/power"
	"softwatt/internal/trace"
	"softwatt/internal/workload"
)

// newCkptMachine builds a machine for the benchmark with the estimator's
// standard wiring (online invocation energy).
func newCkptMachine(t *testing.T, bench, coreName string) (*machine.Machine, machine.Config) {
	t.Helper()
	cfg, err := Options{Core: coreName}.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Build(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m.Collector().SetEnergyFn(power.Default().InvocationEnergy)
	return m, cfg
}

func resultBytes(t *testing.T, r *RunResult) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := SaveResult(&b, r); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func checkCkptEquivalence(t *testing.T, bench, coreName string) {
	// Straight run: the reference result.
	ref, cfg := newCkptMachine(t, bench, coreName)
	if err := ref.Run(0); err != nil {
		t.Fatalf("straight run: %v (console: %q)", err, ref.Console())
	}
	refRes := core.Collect(ref, bench, cfg.Core.String())
	ref.Release()

	// Checkpoint at the halfway cycle, round-trip through the container,
	// restore into a fresh machine, continue to completion.
	half := refRes.TotalCycles / 2
	src, _ := newCkptMachine(t, bench, coreName)
	src.StepCycles(half)
	if src.Halted() {
		t.Fatalf("machine halted during the first half (%d cycles)", half)
	}
	var ctr bytes.Buffer
	if err := trace.WriteCheckpoint(&ctr, src.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	src.Release()

	payload, err := trace.ReadCheckpoint(&ctr)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := newCkptMachine(t, bench, coreName)
	if err := dst.RestoreState(payload); err != nil {
		t.Fatal(err)
	}
	if got := dst.Cycle(); got != half {
		t.Fatalf("restored cycle %d, want %d", got, half)
	}
	if err := dst.Run(0); err != nil {
		t.Fatalf("continued run: %v (console: %q)", err, dst.Console())
	}
	gotRes := core.Collect(dst, bench, cfg.Core.String())
	dst.Release()

	rb, gb := resultBytes(t, refRes), resultBytes(t, gotRes)
	if !bytes.Equal(rb, gb) {
		t.Fatalf("checkpoint/restore changes results: %d vs %d bytes, first difference at byte %d",
			len(rb), len(gb), firstDiff(rb, gb))
	}
}

func TestCheckpointEquivalence(t *testing.T) {
	benchmarks := Benchmarks
	cores := []string{"mipsy", "mxs", "mxs1"}
	if testing.Short() {
		benchmarks = []string{"compress"}
		cores = []string{"mipsy"}
	}
	for _, bench := range benchmarks {
		for _, c := range cores {
			bench, c := bench, c
			t.Run(bench+"/"+c, func(t *testing.T) {
				t.Parallel()
				checkCkptEquivalence(t, bench, c)
			})
		}
	}
}

// TestCheckpointCrossCore: a checkpoint taken under the swift fast-forward
// core restores onto a detailed core — the sampling primitive. The detailed
// core starts cold (that is the documented cold-start bias), so only
// functional equivalence is asserted: the continued run halts cleanly with
// the same console output and exit code as a straight detailed run.
func TestCheckpointCrossCore(t *testing.T) {
	// Learn the swift run's length, then checkpoint at its halfway cycle.
	probe, _ := newCkptMachine(t, "compress", "swift")
	if err := probe.Run(0); err != nil {
		t.Fatal(err)
	}
	half := probe.Cycle() / 2
	probe.Release()

	src, _ := newCkptMachine(t, "compress", "swift")
	src.StepCycles(half)
	if src.Halted() {
		t.Fatalf("machine halted during fast-forward (%d cycles)", half)
	}
	payload := src.Checkpoint()
	src.Release()

	ref, cfg := newCkptMachine(t, "compress", "mipsy")
	if err := ref.Run(0); err != nil {
		t.Fatal(err)
	}
	wantConsole, wantExit := ref.Console(), ref.ExitCode()
	_ = core.Collect(ref, "compress", cfg.Core.String())
	ref.Release()

	dst, _ := newCkptMachine(t, "compress", "mipsy")
	if err := dst.RestoreState(payload); err != nil {
		t.Fatal(err)
	}
	if err := dst.Run(0); err != nil {
		t.Fatalf("cross-core continued run: %v (console: %q)", err, dst.Console())
	}
	if dst.Console() != wantConsole {
		t.Errorf("console diverged after cross-core restore:\nwant %q\ngot  %q", wantConsole, dst.Console())
	}
	if dst.ExitCode() != wantExit {
		t.Errorf("exit code %d, want %d", dst.ExitCode(), wantExit)
	}
	dst.Release()
}

// TestCheckpointRejects: corrupt payloads, wrong configurations, and
// custom-core machines must fail loudly, never restore garbage.
func TestCheckpointRejects(t *testing.T) {
	src, _ := newCkptMachine(t, "compress", "mipsy")
	src.StepCycles(1_000_000)
	payload := src.Checkpoint()
	src.Release()

	t.Run("truncated", func(t *testing.T) {
		dst, _ := newCkptMachine(t, "compress", "mipsy")
		defer dst.Release()
		if err := dst.RestoreState(payload[:len(payload)/2]); err == nil {
			t.Fatal("truncated checkpoint restored without error")
		}
	})
	t.Run("wrong-config", func(t *testing.T) {
		cfg, err := Options{Core: "mipsy", WindowCycles: 40000}.MachineConfig()
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Build("compress")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := machine.New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		defer dst.Release()
		if err := dst.RestoreState(payload); err == nil {
			t.Fatal("checkpoint restored into a different configuration")
		}
	})
	t.Run("custom-core", func(t *testing.T) {
		cfg, err := Options{Core: "mxs"}.MachineConfig()
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Build("compress")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := machine.NewWithMXSWindow(cfg, w, 32)
		if err != nil {
			t.Fatal(err)
		}
		defer dst.Release()
		if err := dst.RestoreState(payload); err == nil {
			t.Fatal("checkpoint restored into a custom-core machine")
		}
	})
}
