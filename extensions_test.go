package softwatt

import (
	"math"
	"testing"
)

// TestIdleHaltSavesEnergy validates the paper's §5 proposal implemented as
// an extension: halting the processor in the idle loop (WAIT) instead of
// busy-waiting must lower idle-mode power and total energy without changing
// the workload's architectural behaviour.
func TestIdleHaltSavesEnergy(t *testing.T) {
	est := NewEstimator()
	busy, err := Run("jess", Options{Core: "mipsy"})
	if err != nil {
		t.Fatal(err)
	}
	halt, err := Run("jess", Options{Core: "mipsy", IdleHalt: true})
	if err != nil {
		t.Fatal(err)
	}
	mpBusy := est.ModeAveragePower([]*RunResult{busy})
	mpHalt := est.ModeAveragePower([]*RunResult{halt})
	if mpHalt[ModeIdle].Total >= mpBusy[ModeIdle].Total*0.9 {
		t.Fatalf("idle power barely changed: %.2f -> %.2f W",
			mpBusy[ModeIdle].Total, mpHalt[ModeIdle].Total)
	}
	eBusy := est.Summarize(busy).CPUMemJ
	eHalt := est.Summarize(halt).CPUMemJ
	if eHalt >= eBusy {
		t.Fatalf("total energy did not drop: %.4f -> %.4f J", eBusy, eHalt)
	}
	// The workload itself is unaffected: the user-mode instruction count
	// matches to within interrupt-boundary attribution noise.
	bu, hu := float64(busy.ModeTotals[ModeUser].Insts), float64(halt.ModeTotals[ModeUser].Insts)
	if math.Abs(bu-hu)/bu > 0.001 {
		t.Fatalf("user instructions changed materially: %.0f -> %.0f", bu, hu)
	}
}

// TestTraceDrivenKernelEstimation validates the paper's §3.3/§5 proposal:
// kernel energy estimated from service invocation counts alone. The paper
// quotes ~10% error; kernel-internal services (whose per-invocation energy
// Table 5 shows to be near-constant) must land inside that margin here.
func TestTraceDrivenKernelEstimation(t *testing.T) {
	if testing.Short() {
		t.Skip("six full runs")
	}
	runs, err := RunAll(Options{Core: "mipsy"})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator()
	for _, te := range est.CrossValidateTraceEstimation(runs) {
		if te.CalibRuns != len(runs)-1 {
			t.Fatalf("%s: calibrated on %d runs", te.Benchmark, te.CalibRuns)
		}
		if te.InternalActualJ <= 0 || te.InternalEstimateJ <= 0 {
			t.Fatalf("%s: empty internal estimate", te.Benchmark)
		}
		if math.Abs(te.InternalErrorPct) > 12 {
			t.Errorf("%s: internal-service estimation error %.1f%% exceeds the paper's margin",
				te.Benchmark, te.InternalErrorPct)
		}
		// The full estimate including size-dependent I/O syscalls is
		// expected to be worse — that asymmetry is the paper's Table 5
		// point about externally-invoked services.
		if math.Abs(te.ErrorPct) < math.Abs(te.InternalErrorPct) {
			t.Logf("%s: full estimate (%.1f%%) beat internal-only (%.1f%%) — unusual but not wrong",
				te.Benchmark, te.ErrorPct, te.InternalErrorPct)
		}
	}
}
