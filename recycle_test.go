package softwatt

// Machine reuse (Machine.Recycle + RestoreState) is the worker-pool
// optimisation sampled windows rely on: restoring a checkpoint into a
// machine that already ran other work must be indistinguishable from
// restoring it into a machine fresh from New. RestoreState overwrites all
// machine state except the RAM and disk-image backing stores, where only
// the checkpoint's dirty/written pages are copied in — Recycle scrubs both
// back to their initial images, so the reconstructed state is identical.
// As in ckptequiv_test.go, the assertion is byte-identical result bytes.

import (
	"bytes"
	"testing"

	"softwatt/internal/core"
)

func TestRecycleRestoreEquivalence(t *testing.T) {
	// Checkpoint a run at an arbitrary mid-run cycle.
	src, cfg := newCkptMachine(t, "compress", "mipsy")
	src.StepCycles(500_000)
	if src.Halted() {
		t.Fatal("machine halted before the checkpoint cycle")
	}
	payload := src.Checkpoint()
	src.Release()

	// Reference: restore into a fresh machine, run to completion.
	fresh, _ := newCkptMachine(t, "compress", "mipsy")
	if err := fresh.RestoreState(payload); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Run(0); err != nil {
		t.Fatalf("fresh-machine run: %v (console: %q)", err, fresh.Console())
	}
	want := resultBytes(t, core.Collect(fresh, "compress", cfg.Core.String()))
	fresh.Release()

	// Candidate: a machine that ran well past the checkpoint cycle — so its
	// RAM and disk image hold dirty pages the checkpoint does not cover —
	// recycled and restored from the same payload.
	reused, _ := newCkptMachine(t, "compress", "mipsy")
	reused.StepCycles(800_000)
	if reused.Halted() {
		t.Fatal("machine halted during the throwaway stretch")
	}
	reused.Recycle()
	if err := reused.RestoreState(payload); err != nil {
		t.Fatal(err)
	}
	if got := reused.Cycle(); got != 500_000 {
		t.Fatalf("restored cycle %d, want 500000", got)
	}
	if err := reused.Run(0); err != nil {
		t.Fatalf("recycled-machine run: %v (console: %q)", err, reused.Console())
	}
	got := resultBytes(t, core.Collect(reused, "compress", cfg.Core.String()))
	reused.Release()

	if !bytes.Equal(want, got) {
		t.Fatalf("recycled machine diverges from fresh machine: %d vs %d bytes, first difference at byte %d",
			len(want), len(got), firstDiff(want, got))
	}
}
