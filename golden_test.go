package softwatt

// Golden equivalence tests: the invariance contract behind every host-time
// optimization of the simulator hot path (DESIGN.md §9). The checked-in
// testdata goldens were serialized from the unoptimized seed simulator;
// re-running the same configurations must reproduce the exact logv2 result
// bytes — every cycle, per-mode/per-service bucket, unit access count,
// cache hit/miss/writeback, TLB lookup and Welford state — and the same
// configuration digest. A deliberate timing-model change (one that is meant
// to alter architected counts) regenerates them with
//
//	go test -run TestGoldenResultBytes -update-golden .
//
// and the diff in the goldens is the reviewable evidence of the change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden run logs in testdata/golden")

// goldenCases are the configurations pinned by goldens: the compress
// workload on both timing models (the in-order Mipsy and the out-of-order
// MXS exercise disjoint hot paths: blocking-cache stalls vs speculation,
// wrong-path fetch and batched retirement).
var goldenCases = []struct {
	name string
	opt  Options
}{
	{"compress-mipsy", Options{Core: "mipsy"}},
	{"compress-mxs", Options{Core: "mxs"}},
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", "golden", name+ext)
}

func TestGoldenResultBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run golden comparison skipped in -short mode")
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Run("compress", tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := SaveResult(&buf, r); err != nil {
				t.Fatal(err)
			}
			digest := ResultDigest(r)

			if *updateGolden {
				if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".swlog"), buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".digest"), []byte(digest+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, digest %s)", goldenPath(tc.name, ".swlog"), buf.Len(), digest)
				return
			}

			wantDigest, err := os.ReadFile(goldenPath(tc.name, ".digest"))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := digest+"\n", string(wantDigest); got != want {
				t.Errorf("config digest = %q, golden %q", got, want)
			}
			want, err := os.ReadFile(goldenPath(tc.name, ".swlog"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("serialized result diverges from golden (%d bytes vs %d): "+
					"an optimization changed architected counts; see DESIGN.md §9 "+
					"(first difference at byte %d)", buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}

			// The golden must also load back as an equivalent result (guards
			// against a writer/reader drift making the byte comparison
			// vacuous).
			lr, err := LoadResult(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			if lr.TotalCycles != r.TotalCycles || lr.Committed != r.Committed {
				t.Errorf("golden loads back cycles=%d committed=%d, run produced %d/%d",
					lr.TotalCycles, lr.Committed, r.TotalCycles, r.Committed)
			}
		})
	}
}

// TestGoldenObservabilityInvariance enforces the observability acceptance
// contract: enabling the energy profiler and the power timeline must not
// change a single architected byte of the result. The run is repeated with
// both features on; after stripping the observability-only sections the
// serialized bytes must equal the committed golden exactly, and the config
// digest must be unchanged (the knobs are excluded from ConfigEntries).
func TestGoldenObservabilityInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run golden comparison skipped in -short mode")
	}
	opt := Options{Core: "mipsy", EnergyProfile: true, TimelineCycles: 1_000_000}
	r, err := Run("compress", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.EProf) == 0 {
		t.Fatal("energy profiling enabled but result carries no EProf entries")
	}
	if len(r.Timeline) == 0 {
		t.Fatal("timeline enabled but result carries no points")
	}

	digest := ResultDigest(r)
	want, err := os.ReadFile(goldenPath("compress-mipsy", ".swlog"))
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, err := os.ReadFile(goldenPath("compress-mipsy", ".digest"))
	if err != nil {
		t.Fatal(err)
	}
	if digest+"\n" != string(wantDigest) {
		t.Errorf("observability knobs leaked into the config digest: %q vs golden %q",
			digest, string(wantDigest))
	}

	// Strip the observability payload; everything that remains is the
	// architected result and must match the golden byte for byte.
	r.Timeline, r.EProf, r.EProfShift = nil, nil, 0
	var buf bytes.Buffer
	if err := SaveResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("result with -eprof/-timeline diverges from golden after stripping "+
			"observability sections (%d bytes vs %d, first difference at byte %d): "+
			"the profiler or timeline perturbed architected state",
			buf.Len(), len(want), firstDiff(buf.Bytes(), want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
