package softwatt

// Golden equivalence tests: the invariance contract behind every host-time
// optimization of the simulator hot path (DESIGN.md §9). The checked-in
// testdata goldens were serialized from the unoptimized seed simulator;
// re-running the same configurations must reproduce the exact logv2 result
// bytes — every cycle, per-mode/per-service bucket, unit access count,
// cache hit/miss/writeback, TLB lookup and Welford state — and the same
// configuration digest. A deliberate timing-model change (one that is meant
// to alter architected counts) regenerates them with
//
//	go test -run TestGoldenResultBytes -update-golden .
//
// and the diff in the goldens is the reviewable evidence of the change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden run logs in testdata/golden")

// goldenCases are the configurations pinned by goldens: the compress
// workload on both timing models (the in-order Mipsy and the out-of-order
// MXS exercise disjoint hot paths: blocking-cache stalls vs speculation,
// wrong-path fetch and batched retirement).
var goldenCases = []struct {
	name string
	opt  Options
}{
	{"compress-mipsy", Options{Core: "mipsy"}},
	{"compress-mxs", Options{Core: "mxs"}},
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", "golden", name+ext)
}

func TestGoldenResultBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run golden comparison skipped in -short mode")
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Run("compress", tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := SaveResult(&buf, r); err != nil {
				t.Fatal(err)
			}
			digest := ResultDigest(r)

			if *updateGolden {
				if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".swlog"), buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".digest"), []byte(digest+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, digest %s)", goldenPath(tc.name, ".swlog"), buf.Len(), digest)
				return
			}

			wantDigest, err := os.ReadFile(goldenPath(tc.name, ".digest"))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := digest+"\n", string(wantDigest); got != want {
				t.Errorf("config digest = %q, golden %q", got, want)
			}
			want, err := os.ReadFile(goldenPath(tc.name, ".swlog"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("serialized result diverges from golden (%d bytes vs %d): "+
					"an optimization changed architected counts; see DESIGN.md §9 "+
					"(first difference at byte %d)", buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}

			// The golden must also load back as an equivalent result (guards
			// against a writer/reader drift making the byte comparison
			// vacuous).
			lr, err := LoadResult(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			if lr.TotalCycles != r.TotalCycles || lr.Committed != r.Committed {
				t.Errorf("golden loads back cycles=%d committed=%d, run produced %d/%d",
					lr.TotalCycles, lr.Committed, r.TotalCycles, r.Committed)
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
