package softwatt

// Sampled-simulation smoke test: the estimator's confidence interval must
// be honest. On a scaled compress run (long enough that its compute/IO
// phase pattern repeats many times — the regime sampling is for), the
// sampled mean power plus/minus its 95% CI must cover the power of the
// exact full-detail run, while simulating only a small detailed fraction.

import (
	"testing"

	"softwatt/internal/core"
	"softwatt/internal/machine"
	"softwatt/internal/power"
	"softwatt/internal/trace"
	"softwatt/internal/workload"
)

// scaledCompress is the compress benchmark with its phase pattern repeated
// `rounds` times instead of 3 (the per-round gap overrides drop out: every
// round runs the calibrated default gap).
func scaledCompress(tb testing.TB, rounds int) machine.Workload {
	tb.Helper()
	p := *workload.Benchmarks()["compress"]
	p.Rounds = rounds
	p.ExtraGapIters = nil
	w, err := workload.BuildParams(&p)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// exactMeanPowerW computes the full-detail run's mean CPU power.
func exactMeanPowerW(t *testing.T, r *RunResult) float64 {
	t.Helper()
	model := power.Default()
	var e float64
	for m := trace.Mode(0); m < trace.NumModes; m++ {
		e += model.BucketEnergy(&r.ModeTotals[m]).Total
	}
	return e / (float64(r.TotalCycles) / r.ClockHz)
}

func TestSampledRunCoversExactMean(t *testing.T) {
	const rounds = 30
	w := scaledCompress(t, rounds)

	cfg, err := Options{Core: "mipsy"}.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m.Collector().SetEnergyFn(power.Default().InvocationEnergy)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	exact := core.Collect(m, "compress", cfg.Core.String())
	m.Release()
	want := exactMeanPowerW(t, exact)

	sampled, err := runSampledWorkload("compress", w, Options{Core: "mipsy"}, SampleOptions{Windows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled.Windows) != 8 {
		t.Fatalf("got %d windows, want 8", len(sampled.Windows))
	}
	if sampled.SampledCycles >= sampled.TotalCycles/2 {
		t.Fatalf("sampled %d of %d cycles: windows are not a small slice of the run",
			sampled.SampledCycles, sampled.TotalCycles)
	}
	lo, hi := sampled.MeanPowerW-sampled.PowerCI95W, sampled.MeanPowerW+sampled.PowerCI95W
	if want < lo || want > hi {
		t.Fatalf("95%% CI [%.3f, %.3f] W does not cover the exact mean %.3f W (sampled mean %.3f W)",
			lo, hi, want, sampled.MeanPowerW)
	}
	t.Logf("exact %.3f W, sampled %.3f +/- %.3f W over %d/%d cycles",
		want, sampled.MeanPowerW, sampled.PowerCI95W, sampled.SampledCycles, sampled.TotalCycles)

	// The timelines agree functionally up to interrupt scheduling: the
	// detailed run takes more cycles, so it sees more timer ticks and
	// therefore commits slightly more handler instructions. The counts must
	// still be within a couple of percent of each other.
	ratio := float64(sampled.Committed) / float64(exact.Committed)
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("fast-forward committed %d instructions, detailed run %d (ratio %.4f)",
			sampled.Committed, exact.Committed, ratio)
	}

	if out := RenderSampled(sampled); len(out) == 0 {
		t.Error("empty sampled report")
	}
}

// TestSampledStockRun: the public entry point works end-to-end on a stock
// benchmark (2 windows, the CI smoke configuration).
func TestSampledStockRun(t *testing.T) {
	s, err := RunSampled("compress", Options{Core: "mipsy"}, SampleOptions{Windows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Windows) != 2 || s.MeanPowerW <= 0 || s.TotalCycles == 0 {
		t.Fatalf("implausible sampled result: %+v", s)
	}
}

// TestSampledWindowsFillOnShortRun: with 3 windows on stock compress the
// reservoir's last checkpoint sits ~17k instructions before the halt, so a
// window restored there dies during warmup and measures zero cycles. The
// tail trim must prefer earlier checkpoints whenever enough exist: every
// selected window must fill completely. Regression test for the
// all-or-nothing trim that kept the worst tail checkpoint.
func TestSampledWindowsFillOnShortRun(t *testing.T) {
	s, err := RunSampled("compress", Options{Core: "mipsy"}, SampleOptions{Windows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(s.Windows))
	}
	for _, wm := range s.Windows {
		if wm.Cycles != 200_000 {
			t.Errorf("window %d @ cycle %d measured %d cycles, want a full 200000",
				wm.Index, wm.StartCycle, wm.Cycles)
		}
	}
}

func TestSampledRejectsSwiftWindows(t *testing.T) {
	if _, err := RunSampled("compress", Options{Core: "swift"}, SampleOptions{}); err == nil {
		t.Fatal("sampled run accepted swift as the detailed core")
	}
}
