package softwatt

// Telemetry invariance tests: DESIGN.md §9's byte-identity contract must
// hold with the full observability stack switched on. Metrics publication
// and span tracing read counters the simulator already keeps, so a run
// with both enabled must serialize to the exact golden logv2 bytes of a
// dark run.

import (
	"bytes"
	"os"
	"testing"

	"softwatt/internal/obs"
)

// TestGoldenBytesWithTelemetry re-runs the compress-mipsy golden case with
// metrics publication and the tracer enabled and demands the same result
// bytes as the checked-in golden (which was produced with telemetry off).
func TestGoldenBytesWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run golden comparison skipped in -short mode")
	}
	obs.SetMetricsEnabled(true)
	defer obs.SetMetricsEnabled(false)
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	cyclesBefore := obs.Sim().Cycles.Value()
	r, err := Run("compress", Options{Core: "mipsy"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenPath("compress-mipsy", ".swlog"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("telemetry perturbed the result: %d bytes vs golden %d "+
			"(first difference at byte %d); observability must never touch "+
			"architected state (DESIGN.md §9/§10)",
			buf.Len(), len(want), firstDiff(buf.Bytes(), want))
	}

	// The run must actually have published: the global cycle counter moved
	// by exactly the run's cycle count.
	if got := obs.Sim().Cycles.Value() - cyclesBefore; got != r.TotalCycles {
		t.Errorf("published cycles = %d, run had %d", got, r.TotalCycles)
	}

	// And the pipeline must have traced its phases on the direct track.
	cats := map[string]bool{}
	for _, ev := range tr.Events() {
		cats[ev.Cat] = true
	}
	for _, want := range []string{"build", "boot", "simulate", "estimate"} {
		if !cats[want] {
			t.Errorf("trace has no %q span; categories seen: %v", want, cats)
		}
	}
}

// TestGoldenBytesWithTelemetryMXS is the out-of-order variant: the MXS
// run exercises the event-scheduler instruments (skip counter, occupancy
// and ready-depth histograms) that the in-order golden never touches, and
// publication must still leave the result bytes untouched.
func TestGoldenBytesWithTelemetryMXS(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run golden comparison skipped in -short mode")
	}
	obs.SetMetricsEnabled(true)
	defer obs.SetMetricsEnabled(false)

	r := obs.Default()
	skip := r.Counter("softwatt_mxs_skip_cycles_total",
		"Cycles elided by the next-event clock skip (MXS event-driven scheduler).", "")
	occ := r.Histogram("softwatt_mxs_window_occupancy",
		"Instruction-window occupancy sampled at each telemetry publication (MXS).", "",
		[]float64{0, 4, 8, 16, 24, 32, 40, 48, 56, 64})
	depth := r.Histogram("softwatt_mxs_ready_queue_depth",
		"Issue-ready queue depth sampled at each telemetry publication (MXS).", "",
		[]float64{0, 1, 2, 4, 8, 16, 32})
	skip0, occ0, depth0 := skip.Value(), occ.Count(), depth.Count()

	res, err := Run("compress", Options{Core: "mxs"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenPath("compress-mxs", ".swlog"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("telemetry perturbed the MXS result: %d bytes vs golden %d "+
			"(first difference at byte %d)", buf.Len(), len(want), firstDiff(buf.Bytes(), want))
	}

	if got := skip.Value() - skip0; got == 0 {
		t.Error("skip-cycle counter did not move during an MXS run")
	}
	if occ.Count() == occ0 || depth.Count() == depth0 {
		t.Errorf("occupancy/ready-depth histograms gained no samples (occ %d->%d, depth %d->%d)",
			occ0, occ.Count(), depth0, depth.Count())
	}
}

// TestBatchTraceWorkerTracks checks that batch cells land on per-worker
// trace tracks (tid >= 1) with cell spans wrapping the pipeline phases.
func TestBatchTraceWorkerTracks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	_, err := RunBatch([]RunSpec{
		{Benchmark: "compress", Options: Options{Core: "mipsy"}, Label: "a"},
		{Benchmark: "compress", Options: Options{Core: "mipsy"}, Label: "b"},
	}, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	for _, ev := range tr.Events() {
		if ev.Cat == "cell" {
			cells++
			if ev.TID < 1 {
				t.Errorf("cell span %q on tid %d, want a worker track >= 1", ev.Name, ev.TID)
			}
		}
	}
	if cells != 2 {
		t.Errorf("got %d cell spans, want 2", cells)
	}
}
