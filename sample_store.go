package softwatt

// Sampled-result persistence (DESIGN.md §14). A SampledResult is a report
// artefact like a RunResult: once computed it can be saved and re-rendered
// with zero simulation. This file mirrors the run-log cache contract for
// sampled estimates — a versioned self-describing file (one SRES section
// in the v2 log container), atomic writes, a digest key covering the
// detailed configuration plus every sampling parameter that shapes the
// estimate, corrupt files counted and re-sampled over.

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"

	"softwatt/internal/ckpt"
	"softwatt/internal/core"
	"softwatt/internal/machine"
	"softwatt/internal/obs"
	"softwatt/internal/trace"
)

// tagSampled is the container section carrying an encoded SampledResult.
var tagSampled = [4]byte{'S', 'R', 'E', 'S'}

// sampledResultVersion versions the SRES payload encoding.
const sampledResultVersion = 1

// sampledDigest is the sampled-result cache key: the resolved detailed
// configuration (the same entries a run log records) plus the resolved
// sampling parameters. Anything that changes the estimate changes the key;
// parameters that do not apply (the adaptive cap under fixed sampling) are
// normalised out so equivalent requests share a key.
func sampledDigest(benchmark string, cfg machine.Config, so SampleOptions) string {
	so, capacity := so.resolve()
	maxw := 0
	if so.TargetCIW > 0 {
		maxw = so.MaxWindows
	}
	entries := core.ConfigEntries(cfg)
	entries = append(entries,
		trace.ConfigEntry{Key: "sample.windows", Value: strconv.Itoa(so.Windows)},
		trace.ConfigEntry{Key: "sample.window_cycles", Value: strconv.FormatUint(so.WindowCycles, 10)},
		trace.ConfigEntry{Key: "sample.warmup_cycles", Value: strconv.FormatUint(so.warmup(), 10)},
		trace.ConfigEntry{Key: "sample.ci_target", Value: strconv.FormatFloat(so.TargetCIW, 'g', -1, 64)},
		trace.ConfigEntry{Key: "sample.max_windows", Value: strconv.Itoa(maxw)},
		trace.ConfigEntry{Key: "sample.reservoir_entries", Value: strconv.Itoa(capacity)},
	)
	return core.ConfigDigest(benchmark, cfg.Core.String(), entries)
}

// SampledDigest returns the cache key a sampled run of the benchmark under
// these options would carry.
func SampledDigest(benchmark string, opt Options, so SampleOptions) (string, error) {
	cfg, err := opt.MachineConfig()
	if err != nil {
		return "", err
	}
	return sampledDigest(benchmark, cfg, so), nil
}

// SampledCacheFileName is the file name RunSampledCached uses for a
// sampled run within the cache directory.
func SampledCacheFileName(benchmark string, opt Options, so SampleOptions) (string, error) {
	digest, err := SampledDigest(benchmark, opt, so)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s-%s.swsmp", benchmark, digest), nil
}

// encodeSampledResult serialises a result as an SRES payload.
func encodeSampledResult(r *SampledResult) []byte {
	var w ckpt.Writer
	w.U32(sampledResultVersion)
	w.Str(r.Benchmark)
	w.Str(r.Core)
	w.Str(r.Digest)
	w.F64(r.ClockHz)
	w.U64(r.TotalCycles)
	w.U64(r.Committed)
	w.U64(r.WindowCycles)
	w.U64(r.SampledCycles)
	w.F64(r.MeanPowerW)
	w.F64(r.PowerCI95W)
	w.F64(r.EnergyJ)
	w.F64(r.EnergyCI95J)
	w.F64(r.DiskEnergyJ)
	w.U64(r.IdleCycles)
	w.U64(r.DiskStats.Reads)
	w.U64(r.DiskStats.Writes)
	w.U64(r.DiskStats.BytesMoved)
	w.U64(r.DiskStats.Spinups)
	w.U64(r.DiskStats.Spindowns)
	w.U32(uint32(len(r.DiskStats.StateCycles)))
	for _, c := range r.DiskStats.StateCycles {
		w.U64(c)
	}
	w.U32(uint32(len(r.Windows)))
	for i := range r.Windows {
		wm := &r.Windows[i]
		w.U64(uint64(wm.Index))
		w.U64(wm.StartCycle)
		w.U64(wm.Cycles)
		w.F64(wm.EnergyJ)
		w.F64(wm.PowerW)
	}
	return w.Bytes()
}

// decodeSampledResult parses an SRES payload. Hostile input fails with an
// error, never a panic or an outsized allocation.
func decodeSampledResult(data []byte) (*SampledResult, error) {
	r := ckpt.NewReader(data)
	if v := r.U32(); v != sampledResultVersion && r.Err() == nil {
		return nil, fmt.Errorf("softwatt: unsupported sampled-result version %d", v)
	}
	res := &SampledResult{
		Benchmark: r.Str(),
		Core:      r.Str(),
		Digest:    r.Str(),
	}
	res.ClockHz = r.F64()
	res.TotalCycles = r.U64()
	res.Committed = r.U64()
	res.WindowCycles = r.U64()
	res.SampledCycles = r.U64()
	res.MeanPowerW = r.F64()
	res.PowerCI95W = r.F64()
	res.EnergyJ = r.F64()
	res.EnergyCI95J = r.F64()
	res.DiskEnergyJ = r.F64()
	res.IdleCycles = r.U64()
	res.DiskStats.Reads = r.U64()
	res.DiskStats.Writes = r.U64()
	res.DiskStats.BytesMoved = r.U64()
	res.DiskStats.Spinups = r.U64()
	res.DiskStats.Spindowns = r.U64()
	if n := r.Count(8); n != len(res.DiskStats.StateCycles) && r.Err() == nil {
		return nil, fmt.Errorf("softwatt: %d disk state counters, want %d",
			n, len(res.DiskStats.StateCycles))
	}
	for i := range res.DiskStats.StateCycles {
		res.DiskStats.StateCycles[i] = r.U64()
	}
	n := r.Count(8 + 8 + 8 + 8 + 8) // index, start, cycles, energy, power
	res.Windows = make([]WindowMeasure, n)
	for i := range res.Windows {
		wm := &res.Windows[i]
		wm.Index = int(r.U64())
		wm.StartCycle = r.U64()
		wm.Cycles = r.U64()
		wm.EnergyJ = r.F64()
		wm.PowerW = r.F64()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("softwatt: sampled result: %w", err)
	}
	return res, nil
}

// SaveSampledResult serialises a sampled result to w in the v2 container
// format (one SRES section). A loaded result re-renders the identical
// report.
func SaveSampledResult(w *os.File, r *SampledResult) error {
	return trace.WriteSectionContainer(w, tagSampled, encodeSampledResult(r))
}

// SaveSampledResultFile writes a sampled-result file, creating or
// replacing path atomically (temp + rename): concurrent readers see the
// old complete file, no file, or the new complete file.
func SaveSampledResultFile(path string, r *SampledResult) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := SaveSampledResult(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadSampledResultFile reads a sampled-result file.
func LoadSampledResultFile(path string) (*SampledResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := trace.ReadSectionContainer(bytes.NewReader(data), tagSampled)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r, err := decodeSampledResult(payload)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// RunSampledCached is RunSampled backed by a directory of saved sampled
// results: a run whose result is present (matched by digest) loads instead
// of simulating anything at all — no fast-forward, no windows — and a miss
// samples and saves. A file that exists but fails to load is counted and
// warned about, then re-sampled over; a digest mismatch is a plain miss.
// This mirrors the run-log cache contract (RunBatchCached) for sampled
// estimates.
func RunSampledCached(benchmark string, opt Options, so SampleOptions, dir string) (*SampledResult, error) {
	if dir == "" {
		return RunSampled(benchmark, opt, so)
	}
	digest, err := SampledDigest(benchmark, opt, so)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.swsmp", benchmark, digest))
	r, err := LoadSampledResultFile(path)
	if err == nil && r.Digest == digest {
		obs.Batch().SampledCacheHits.Inc()
		return r, nil
	}
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		obs.Batch().SampledCacheCorrupt.Inc()
		fmt.Fprintf(os.Stderr, "softwatt: corrupt sampled result %s (re-sampling): %v\n", path, err)
	}
	obs.Batch().SampledCacheMisses.Inc()
	r, err = RunSampled(benchmark, opt, so)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := SaveSampledResultFile(path, r); err != nil {
		return nil, err
	}
	return r, nil
}
